package fastjoin

import (
	"fmt"
	"time"

	"fastjoin/internal/obs"
)

// StoreKind selects the join instances' window-store implementation.
type StoreKind uint8

const (
	// StoreChunked is the chunked arena store (the default): slab-backed
	// per-key chunk chains with O(expired) expiry.
	StoreChunked StoreKind = iota
	// StoreMap is the map[Key][]Tuple reference layout, kept for A/B
	// benchmarking and differential testing.
	StoreMap
)

// String names the store kind as the -store flag does.
func (k StoreKind) String() string {
	switch k {
	case StoreChunked:
		return "chunked"
	case StoreMap:
		return "map"
	default:
		return fmt.Sprintf("StoreKind(%d)", uint8(k))
	}
}

// ParseStoreKind parses a -store flag value; "" means the default.
func ParseStoreKind(s string) (StoreKind, error) {
	switch s {
	case "", "chunked":
		return StoreChunked, nil
	case "map":
		return StoreMap, nil
	default:
		return 0, fmt.Errorf("fastjoin: unknown store implementation %q (want \"chunked\" or \"map\")", s)
	}
}

// ChaosProfile selects a deterministic fault-injection profile. The zero
// value is ChaosNone: no injector is attached.
type ChaosProfile uint8

const (
	// ChaosNone runs without fault injection.
	ChaosNone ChaosProfile = iota
	// ChaosDropOnly drops control-plane messages.
	ChaosDropOnly
	// ChaosDelayOnly delays (and thereby reorders) control messages.
	ChaosDelayOnly
	// ChaosDupOnly duplicates control messages.
	ChaosDupOnly
	// ChaosMixed combines drops, delays, duplicates, and task stalls.
	ChaosMixed
	// ChaosAbortStorm targets the marker handshake to force migration
	// aborts and rollbacks.
	ChaosAbortStorm
)

var chaosProfileNames = map[ChaosProfile]string{
	ChaosNone:       "none",
	ChaosDropOnly:   "droponly",
	ChaosDelayOnly:  "delayonly",
	ChaosDupOnly:    "duponly",
	ChaosMixed:      "mixed",
	ChaosAbortStorm: "abortstorm",
}

// String names the profile as the -chaos flag and chaos.Lookup do.
func (p ChaosProfile) String() string {
	if name, ok := chaosProfileNames[p]; ok {
		return name
	}
	return fmt.Sprintf("ChaosProfile(%d)", uint8(p))
}

// ParseChaosProfile parses a -chaos flag value; "" and "none" both mean
// no injection.
func ParseChaosProfile(s string) (ChaosProfile, error) {
	if s == "" {
		return ChaosNone, nil
	}
	for p, name := range chaosProfileNames {
		if name == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("fastjoin: unknown chaos profile %q", s)
}

// MigrationOptions tunes FastJoin's dynamic load balancing. Only
// meaningful for the migration-enabled kinds (KindFastJoin,
// KindFastJoinSAFit); zero values get the paper's defaults.
type MigrationOptions struct {
	// Theta is the load imbalance threshold Θ (default 2.2, the paper's).
	Theta float64
	// Cooldown is the minimum time between migrations (default 1s).
	Cooldown time.Duration
	// SustainTicks is how many consecutive monitor evaluations must see
	// LI > Theta before a migration triggers (default 3); 1 disables the
	// hysteresis.
	SustainTicks int
	// MinBenefit is GreedyFit's θ_gap (default 1).
	MinBenefit int64
	// AbortTimeout bounds a migration's marker handshake: if the forward
	// markers have not all arrived after this long (measured in
	// StatsInterval ticks), the migration aborts and rolls back to the
	// pre-migration routing without losing or duplicating results.
	// 0 disables aborts (a stuck handshake then relies on re-broadcast
	// alone).
	AbortTimeout time.Duration
	// SplitThreshold enables hot-key splitting: a key whose share of its
	// dispatcher task's traffic exceeds this fraction (per detector
	// epoch) is split — its stored tuples salt across SplitWays join
	// instances and probes fan out to all of them — instead of being
	// migrated whole, which cannot help a single key hotter than an
	// entire instance's fair share. 0 (the default) disables splitting;
	// the valid range is (0, 1]. FastJoin kinds only.
	SplitThreshold float64
	// SplitWays is how many instances per side a split key salts across
	// (default 4, clamped to Joiners).
	SplitWays int
}

// BatchOptions tunes the batched data plane.
type BatchOptions struct {
	// Size is the dispatcher's per-(stream, target) batch capacity: up to
	// Size routed tuples travel as one message. 0 means the default
	// (DefaultBatchSize); 1 disables batching (the A/B baseline).
	Size int
	// Linger bounds how long a partially filled batch may wait in a busy
	// dispatcher before a tick flushes it (default 2ms).
	Linger time.Duration
}

// WindowOptions enables window-based join semantics.
type WindowOptions struct {
	// Span is the join window; 0 means full-history join.
	Span time.Duration
	// SubWindows is the sub-window count when Span > 0 (default 8).
	SubWindows int
}

// ChaosOptions attaches a deterministic fault injector — for testing and
// fault drills only.
type ChaosOptions struct {
	// Profile selects what to inject (default ChaosNone: nothing).
	Profile ChaosProfile
	// Seed seeds the injector's per-lane random streams, so a run
	// replays exactly.
	Seed int64
}

// ObserveOptions configures the live observability plane: the
// control-plane migration tracer and the HTTP metrics endpoint.
type ObserveOptions struct {
	// Addr is the HTTP listen address of the observability endpoint
	// (e.g. ":9144", or "127.0.0.1:0" for an ephemeral port — read the
	// bound address back with System.ObserveAddr). It serves /metrics
	// (Prometheus text format), /stats.json, /trace.json, and
	// /debug/pprof. Empty disables the endpoint; the tracer still runs
	// and System.Trace still works.
	Addr string
	// TraceCapacity is the control-plane trace ring's capacity in events
	// (default 4096). The ring is bounded: under an event storm the
	// oldest events are evicted, never allocated around.
	TraceCapacity int
}

// Options configures a join system. Zero values get sensible defaults;
// Validate (called by New) normalizes them all in one place.
//
// The flat migration/batch/window/chaos fields below are deprecated
// aliases of the nested sub-structs, honored for one release: when a
// nested field is zero, its flat alias is consulted. After Validate the
// nested structs are authoritative and the aliases mirror them.
type Options struct {
	// Kind selects the system (default KindFastJoin).
	Kind Kind
	// Joiners is the number of join instances per biclique side
	// (default 4; the paper's cluster default is 48).
	Joiners int
	// Dispatchers and Shufflers size the dispatching component (default 2
	// each).
	Dispatchers int
	Shufflers   int
	// SubgroupSize is ContRand's subgroup size (default 2).
	SubgroupSize int
	// StatsInterval is the load-report/monitor period (default 100ms).
	StatsInterval time.Duration
	// Predicate optionally refines key-equality matches.
	Predicate Predicate
	// PreProcess, when set, rewrites every tuple before dispatching (the
	// pre-processing unit's user-defined function). Must be safe for
	// concurrent use.
	PreProcess func(Tuple) Tuple
	// OnResult, when set, receives every joined pair (result emission
	// mode). When nil the system only counts pairs — the high-throughput
	// mode benchmarks use.
	OnResult func(JoinedPair)
	// Sources feed the system; one ingestion task per source. Required.
	Sources []TupleSource
	// QueueSize bounds each task's input queue (backpressure;
	// default 1024).
	QueueSize int
	// ServiceRate, when positive, emulates per-node compute capacity:
	// each join instance is limited to ServiceRate virtual ops/second
	// (1 op per store, 1 + MatchCost per scanned tuple per probe). The
	// benchmark harness uses it so cluster-scale behaviour reproduces on
	// small hosts; 0 disables the emulation.
	ServiceRate float64
	// MatchCost is the virtual op cost per scanned stored tuple
	// (default 0.01 when ServiceRate is set).
	MatchCost float64
	// Seed derandomizes placement.
	Seed uint64
	// StoreKind selects the window-store implementation (default
	// StoreChunked).
	StoreKind StoreKind

	// Migration tunes the dynamic load balancer of the migration-enabled
	// kinds.
	Migration MigrationOptions
	// Batching tunes the batched data plane.
	Batching BatchOptions
	// Windowing enables window-based join semantics.
	Windowing WindowOptions
	// Chaos attaches a deterministic fault injector.
	Chaos ChaosOptions
	// Observe configures the migration tracer and the HTTP observability
	// endpoint.
	Observe ObserveOptions

	// Theta is the load imbalance threshold Θ.
	//
	// Deprecated: use Migration.Theta.
	Theta float64
	// Cooldown is the minimum time between migrations.
	//
	// Deprecated: use Migration.Cooldown.
	Cooldown time.Duration
	// SustainTicks is the monitor's trigger hysteresis.
	//
	// Deprecated: use Migration.SustainTicks.
	SustainTicks int
	// MinBenefit is GreedyFit's θ_gap.
	//
	// Deprecated: use Migration.MinBenefit.
	MinBenefit int64
	// AbortTimeout bounds the migration marker handshake.
	//
	// Deprecated: use Migration.AbortTimeout.
	AbortTimeout time.Duration
	// BatchSize is the data-plane batch capacity.
	//
	// Deprecated: use Batching.Size.
	BatchSize int
	// BatchLinger bounds a partial batch's wait.
	//
	// Deprecated: use Batching.Linger.
	BatchLinger time.Duration
	// Window is the join window span.
	//
	// Deprecated: use Windowing.Span.
	Window time.Duration
	// SubWindows is the sub-window count.
	//
	// Deprecated: use Windowing.SubWindows.
	SubWindows int
	// ChaosProfile names a fault-injection profile ("none", "droponly",
	// "delayonly", "duponly", "mixed", "abortstorm").
	//
	// Deprecated: use Chaos.Profile.
	ChaosProfile string
	// ChaosSeed seeds the chaos injector.
	//
	// Deprecated: use Chaos.Seed.
	ChaosSeed int64
	// Store names the window-store implementation ("chunked" or "map").
	//
	// Deprecated: use StoreKind.
	Store string
}

// Validate folds the deprecated flat aliases into the nested sub-structs,
// fills every default in one place, and rejects invalid combinations.
// New calls it on its own copy; callers may also invoke it directly to
// inspect the effective configuration. It is idempotent.
func (o *Options) Validate() error {
	// Fold deprecated aliases into their nested homes. A non-zero nested
	// field always wins over its alias.
	if o.Migration.Theta == 0 {
		o.Migration.Theta = o.Theta
	}
	if o.Migration.Cooldown == 0 {
		o.Migration.Cooldown = o.Cooldown
	}
	if o.Migration.SustainTicks == 0 {
		o.Migration.SustainTicks = o.SustainTicks
	}
	if o.Migration.MinBenefit == 0 {
		o.Migration.MinBenefit = o.MinBenefit
	}
	if o.Migration.AbortTimeout == 0 {
		o.Migration.AbortTimeout = o.AbortTimeout
	}
	if o.Batching.Size == 0 {
		o.Batching.Size = o.BatchSize
	}
	if o.Batching.Linger == 0 {
		o.Batching.Linger = o.BatchLinger
	}
	if o.Windowing.Span == 0 {
		o.Windowing.Span = o.Window
	}
	if o.Windowing.SubWindows == 0 {
		o.Windowing.SubWindows = o.SubWindows
	}
	if o.Chaos.Seed == 0 {
		o.Chaos.Seed = o.ChaosSeed
	}
	if o.Chaos.Profile == ChaosNone && o.ChaosProfile != "" {
		p, err := ParseChaosProfile(o.ChaosProfile)
		if err != nil {
			return err
		}
		o.Chaos.Profile = p
	}
	if o.StoreKind == StoreChunked && o.Store != "" {
		k, err := ParseStoreKind(o.Store)
		if err != nil {
			return err
		}
		o.StoreKind = k
	}

	// Validation.
	if o.Kind > KindBroadcast {
		return fmt.Errorf("fastjoin: unknown system kind %v", o.Kind)
	}
	if _, ok := chaosProfileNames[o.Chaos.Profile]; !ok {
		return fmt.Errorf("fastjoin: unknown chaos profile %v", o.Chaos.Profile)
	}
	if o.StoreKind > StoreMap {
		return fmt.Errorf("fastjoin: unknown store kind %v", o.StoreKind)
	}
	if o.Batching.Size < 0 {
		return fmt.Errorf("fastjoin: negative batch size")
	}
	if o.Windowing.Span < 0 {
		return fmt.Errorf("fastjoin: negative window span")
	}
	if o.ServiceRate < 0 {
		return fmt.Errorf("fastjoin: negative ServiceRate")
	}
	if o.Migration.SplitThreshold < 0 || o.Migration.SplitThreshold > 1 {
		return fmt.Errorf("fastjoin: SplitThreshold %v outside (0, 1]", o.Migration.SplitThreshold)
	}
	if o.Migration.SplitThreshold > 0 && o.Kind != KindFastJoin && o.Kind != KindFastJoinSAFit {
		return fmt.Errorf("fastjoin: SplitThreshold requires a FastJoin kind (hot-key splitting rides the migration machinery)")
	}

	// Defaults, normalized here instead of scattering them across New and
	// biclique.Config.Validate (which still backstops direct users of the
	// internal package).
	if o.Joiners <= 0 {
		o.Joiners = 4
	}
	if o.Dispatchers <= 0 {
		o.Dispatchers = 2
	}
	if o.Shufflers <= 0 {
		o.Shufflers = 2
	}
	if o.SubgroupSize <= 0 {
		o.SubgroupSize = 2
	}
	if o.StatsInterval <= 0 {
		o.StatsInterval = 100 * time.Millisecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 1024
	}
	if o.ServiceRate > 0 && o.MatchCost <= 0 {
		o.MatchCost = 0.01
	}
	if o.Batching.Size == 0 {
		o.Batching.Size = DefaultBatchSize
	}
	if o.Batching.Linger <= 0 {
		o.Batching.Linger = 2 * time.Millisecond
	}
	if o.Windowing.Span > 0 && o.Windowing.SubWindows <= 0 {
		o.Windowing.SubWindows = 8
	}
	if o.Kind == KindFastJoin || o.Kind == KindFastJoinSAFit {
		if o.Migration.Theta <= 1 {
			o.Migration.Theta = 2.2
		}
		if o.Migration.Cooldown <= 0 {
			o.Migration.Cooldown = time.Second
		}
		if o.Migration.SustainTicks <= 0 {
			o.Migration.SustainTicks = 3
		}
		if o.Migration.MinBenefit <= 0 {
			o.Migration.MinBenefit = 1
		}
	}
	if o.Observe.TraceCapacity <= 0 {
		o.Observe.TraceCapacity = obs.DefaultTraceCapacity
	}

	// Mirror the merged values back into the aliases so legacy readers of
	// the struct observe the effective configuration.
	o.Theta = o.Migration.Theta
	o.Cooldown = o.Migration.Cooldown
	o.SustainTicks = o.Migration.SustainTicks
	o.MinBenefit = o.Migration.MinBenefit
	o.AbortTimeout = o.Migration.AbortTimeout
	o.BatchSize = o.Batching.Size
	o.BatchLinger = o.Batching.Linger
	o.Window = o.Windowing.Span
	o.SubWindows = o.Windowing.SubWindows
	o.ChaosSeed = o.Chaos.Seed
	o.ChaosProfile = o.Chaos.Profile.String()
	o.Store = o.StoreKind.String()
	return nil
}
