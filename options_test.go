package fastjoin

import (
	"strings"
	"testing"
	"time"
)

func TestValidateFoldsDeprecatedAliases(t *testing.T) {
	o := Options{
		Kind:         KindFastJoin,
		Theta:        3.5,
		Cooldown:     250 * time.Millisecond,
		SustainTicks: 5,
		MinBenefit:   77,
		AbortTimeout: 4 * time.Second,
		BatchSize:    16,
		BatchLinger:  7 * time.Millisecond,
		Window:       9 * time.Second,
		SubWindows:   4,
		ChaosProfile: "mixed",
		ChaosSeed:    99,
		Store:        "map",
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Migration.Theta != 3.5 || o.Migration.Cooldown != 250*time.Millisecond ||
		o.Migration.SustainTicks != 5 || o.Migration.MinBenefit != 77 ||
		o.Migration.AbortTimeout != 4*time.Second {
		t.Errorf("migration aliases not folded: %+v", o.Migration)
	}
	if o.Batching != (BatchOptions{Size: 16, Linger: 7 * time.Millisecond}) {
		t.Errorf("batch aliases not folded: %+v", o.Batching)
	}
	if o.Windowing != (WindowOptions{Span: 9 * time.Second, SubWindows: 4}) {
		t.Errorf("window aliases not folded: %+v", o.Windowing)
	}
	if o.Chaos != (ChaosOptions{Profile: ChaosMixed, Seed: 99}) {
		t.Errorf("chaos aliases not folded: %+v", o.Chaos)
	}
	if o.StoreKind != StoreMap {
		t.Errorf("store alias not folded: %v", o.StoreKind)
	}
}

func TestValidateNestedWinsOverAlias(t *testing.T) {
	o := Options{
		Kind:      KindFastJoin,
		Theta:     9.9,
		Migration: MigrationOptions{Theta: 1.5},
		Store:     "map",
		StoreKind: StoreChunked, // zero value: alias must win here
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Migration.Theta != 1.5 {
		t.Errorf("nested Theta overridden by alias: %v", o.Migration.Theta)
	}
	if o.Theta != 1.5 {
		t.Errorf("alias not mirrored back: %v", o.Theta)
	}
	if o.StoreKind != StoreMap {
		t.Errorf("zero StoreKind did not defer to Store alias: %v", o.StoreKind)
	}
}

func TestValidateDefaults(t *testing.T) {
	o := Options{Kind: KindFastJoin, Windowing: WindowOptions{Span: time.Second}}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Joiners != 4 || o.Dispatchers != 2 || o.Shufflers != 2 || o.QueueSize != 1024 {
		t.Errorf("topology defaults: joiners=%d dispatchers=%d shufflers=%d queue=%d",
			o.Joiners, o.Dispatchers, o.Shufflers, o.QueueSize)
	}
	if o.Migration.Theta != 2.2 || o.Migration.Cooldown != time.Second ||
		o.Migration.SustainTicks != 3 || o.Migration.MinBenefit != 1 {
		t.Errorf("migration defaults: %+v", o.Migration)
	}
	if o.Batching.Size != DefaultBatchSize || o.Batching.Linger != 2*time.Millisecond {
		t.Errorf("batch defaults: %+v", o.Batching)
	}
	if o.Windowing.SubWindows != 8 {
		t.Errorf("sub-window default: %d", o.Windowing.SubWindows)
	}
	if o.Observe.TraceCapacity != 4096 {
		t.Errorf("trace capacity default: %d", o.Observe.TraceCapacity)
	}
	// Idempotent: a second pass changes nothing.
	before := o
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if o.Migration != before.Migration || o.Batching != before.Batching ||
		o.Windowing != before.Windowing || o.Observe != before.Observe {
		t.Error("Validate is not idempotent")
	}

	// Baselines do not get migration defaults forced on them.
	b := Options{Kind: KindBiStream}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Migration.Theta != 0 {
		t.Errorf("baseline got migration defaults: %+v", b.Migration)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string
	}{
		{"bad store alias", Options{Store: "bogus"}, "unknown store"},
		{"bad chaos alias", Options{ChaosProfile: "bogus"}, "unknown chaos profile"},
		{"bad store kind", Options{StoreKind: StoreKind(9)}, "unknown store"},
		{"bad chaos kind", Options{Chaos: ChaosOptions{Profile: ChaosProfile(9)}}, "unknown chaos profile"},
		{"bad kind", Options{Kind: Kind(42)}, "unknown system kind"},
		{"negative batch", Options{Batching: BatchOptions{Size: -1}}, "batch"},
		{"negative window", Options{Windowing: WindowOptions{Span: -time.Second}}, "window"},
		{"split threshold over one", Options{Kind: KindFastJoin,
			Migration: MigrationOptions{SplitThreshold: 1.5}}, "SplitThreshold"},
		{"split threshold negative", Options{Kind: KindFastJoin,
			Migration: MigrationOptions{SplitThreshold: -0.1}}, "SplitThreshold"},
		{"split on baseline", Options{Kind: KindBiStream,
			Migration: MigrationOptions{SplitThreshold: 0.2}}, "FastJoin kind"},
	}
	for _, c := range cases {
		err := c.o.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestStoreKindRoundTrip(t *testing.T) {
	for _, k := range []StoreKind{StoreChunked, StoreMap} {
		got, err := ParseStoreKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseStoreKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := ParseStoreKind(""); err != nil || k != StoreChunked {
		t.Errorf(`ParseStoreKind("") = %v, %v; want chunked default`, k, err)
	}
	if _, err := ParseStoreKind("bogus"); err == nil {
		t.Error("bogus store accepted")
	}
}

func TestChaosProfileRoundTrip(t *testing.T) {
	all := []ChaosProfile{ChaosNone, ChaosDropOnly, ChaosDelayOnly, ChaosDupOnly, ChaosMixed, ChaosAbortStorm}
	for _, p := range all {
		got, err := ParseChaosProfile(p.String())
		if err != nil || got != p {
			t.Errorf("ParseChaosProfile(%q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParseChaosProfile(""); err != nil || p != ChaosNone {
		t.Errorf(`ParseChaosProfile("") = %v, %v; want none`, p, err)
	}
	if _, err := ParseChaosProfile("bogus"); err == nil {
		t.Error("bogus profile accepted")
	}
}

// TestFlatOptionsStillWork runs a small system configured entirely through
// the deprecated flat fields — the one-release compatibility promise.
func TestFlatOptionsStillWork(t *testing.T) {
	sys, err := New(Options{
		Kind:     KindFastJoin,
		Joiners:  2,
		Sources:  []TupleSource{finiteSource(400, 8)},
		Theta:    1.5,
		Cooldown: 20 * time.Millisecond,
		Store:    "map",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitComplete(time.Minute); err != nil {
		sys.Stop()
		t.Fatal(err)
	}
	sys.Stop()
	if sys.Stats().Results == 0 {
		t.Error("flat-configured system joined nothing")
	}
}
