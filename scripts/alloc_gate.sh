#!/usr/bin/env bash
# Allocation ceiling gate.
#
# Runs the data-plane allocation benchmark (BenchmarkDataPlaneBatch32: one
# full dispatcher→shuffler→joiner run per op, chunked store, default batch
# size) and enforces that allocs/op stays at or below the checked-in
# ceiling in ci/alloc_ceiling.txt. The ceiling was set from the measured
# steady state (~25k allocs/op) plus headroom for CI jitter; the pre-arena
# tree measured ~51k. Alloc counts are deterministic enough that a breach
# means a real regression — a new per-tuple or per-pair allocation on the
# hot path — not noise. Lowering the ceiling after an optimization is
# encouraged; raising it needs a very good reason in the commit message.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(go test -run='^$' -bench 'BenchmarkDataPlaneBatch32$' -benchtime=10x -benchmem ./internal/biclique)"
echo "$out"

allocs=$(echo "$out" | awk '/^BenchmarkDataPlaneBatch32/ {for (i=1; i<=NF; i++) if ($i == "allocs/op") print $(i-1)}')
ceiling=$(grep -v '^#' ci/alloc_ceiling.txt | head -n1)

if [ -z "$allocs" ]; then
  echo "alloc gate FAILED: could not parse allocs/op from benchmark output" >&2
  exit 1
fi

echo
echo "data-plane allocs/op: ${allocs} (ceiling ${ceiling})"
if [ "$allocs" -gt "$ceiling" ]; then
  echo "alloc gate FAILED: ${allocs} allocs/op > ceiling ${ceiling}" >&2
  exit 1
fi
echo "alloc gate OK"
