#!/usr/bin/env bash
# Coverage floor gate.
#
# Prints per-package statement coverage, then enforces a floor on the
# combined coverage of the migration-protocol core (internal/biclique +
# internal/core): it must not drop below the checked-in baseline in
# ci/coverage_baseline.txt, which was measured on the tree *before* the
# chaos/fault-injection work landed. Raising the baseline is encouraged;
# lowering it needs a very good reason in the commit message.
set -euo pipefail
cd "$(dirname "$0")/.."

profile="$(mktemp)"
trap 'rm -f "$profile"' EXIT

echo "== per-package coverage =="
go test -count=1 -cover ./...

echo
echo "== biclique+core combined floor =="
go test -count=1 -coverprofile="$profile" \
  -coverpkg=./internal/biclique,./internal/core \
  ./internal/biclique ./internal/core

total=$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/,"",$3); print $3}')
floor=$(grep -v '^#' ci/coverage_baseline.txt | head -n1)

echo "combined biclique+core coverage: ${total}% (floor ${floor}%)"
if ! awk -v t="$total" -v f="$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }'; then
  echo "coverage gate FAILED: ${total}% < baseline ${floor}%" >&2
  exit 1
fi
echo "coverage gate OK"
