#!/usr/bin/env bash
# escape_gate.sh — the compiler-backed escape gate.
#
# Rebuilds the hot-path packages (internal/window, internal/biclique,
# internal/engine) with -gcflags=-m, attributes heap-escape diagnostics to
# functions annotated //lint:hotpath, and diffs them against the
# checked-in baseline (ci/escape_baseline.txt). A new escape in a hot
# function fails the gate.
#
# To admit an intentional escape (or drop stale entries) in a reviewed
# change:
#   go run ./cmd/fastjoin-escape -update
set -euo pipefail
cd "$(dirname "$0")/.."

exec go run ./cmd/fastjoin-escape "$@"
