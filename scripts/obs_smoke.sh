#!/usr/bin/env bash
# Observability endpoint smoke test.
#
# Boots a real join server (fastjoin-node -listen ... -observe ...) with an
# ephemeral observability endpoint, streams a rate-limited workload at it
# from a second process, and scrapes the endpoint mid-run:
#
#   - /metrics must parse as Prometheus text and carry the per-instance
#     load gauges, the engine queue gauges, and the migration counters;
#   - /stats.json must be JSON with a results field.
#
# Everything runs on 127.0.0.1 with kernel-assigned ports, so the smoke
# test is safe to run concurrently with anything.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
server_pid=""
client_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

go build -o "$workdir/fastjoin-node" ./cmd/fastjoin-node

log="$workdir/server.log"
"$workdir/fastjoin-node" -listen 127.0.0.1:0 -ingest 1 -joiners 4 \
  -observe 127.0.0.1:0 >"$log" 2>&1 &
server_pid=$!

wait_for_line() {
  local pattern=$1
  for _ in $(seq 1 100); do
    if grep -q "$pattern" "$log"; then return 0; fi
    if ! kill -0 "$server_pid" 2>/dev/null; then
      echo "obs smoke FAILED: server exited early" >&2
      cat "$log" >&2
      return 1
    fi
    sleep 0.1
  done
  echo "obs smoke FAILED: server never printed '$pattern'" >&2
  cat "$log" >&2
  return 1
}

wait_for_line "join server"
listen_addr="$(sed -n 's/^join server (.*) on \([0-9.:]*\);.*/\1/p' "$log")"

# Stream slowly enough that the server is alive while we scrape.
"$workdir/fastjoin-node" -connect "$listen_addr" -workload zipf \
  -tuples 60000 -rate 12000 >"$workdir/client.log" 2>&1 &
client_pid=$!

wait_for_line "observability endpoint"
obs_url="$(sed -n 's#^observability endpoint on \(http://[0-9.:]*\)/metrics$#\1#p' "$log")"
echo "scraping $obs_url"

# Let the system ingest for a moment so the gauges carry live values.
sleep 2

metrics="$(curl -fsS "$obs_url/metrics")"
stats="$(curl -fsS "$obs_url/stats.json")"

fail=0
for family in \
  fastjoin_results_total \
  fastjoin_ingested_total \
  fastjoin_instance_load \
  fastjoin_instance_stored \
  fastjoin_instance_probe_pressure \
  fastjoin_load_imbalance \
  fastjoin_engine_queue_depth \
  fastjoin_engine_queue_high_water \
  fastjoin_migrations_total \
  fastjoin_migration_aborts_total \
  fastjoin_split_keys \
  fastjoin_split_residual_keys \
  fastjoin_keys_retired_total \
  fastjoin_trace_events_total; do
  if ! grep -q "^# TYPE $family " <<<"$metrics"; then
    echo "obs smoke FAILED: /metrics missing family $family" >&2
    fail=1
  fi
done
if ! grep -q '^fastjoin_instance_load{side="R",instance="0"}' <<<"$metrics"; then
  echo "obs smoke FAILED: /metrics missing per-instance load sample" >&2
  fail=1
fi
if ! grep -q '"results"' <<<"$stats"; then
  echo "obs smoke FAILED: /stats.json missing results field: $stats" >&2
  fail=1
fi
if [ "$fail" -ne 0 ]; then
  printf '%s\n' "$metrics" | head -50 >&2
  exit 1
fi

wait "$client_pid"; client_pid=""
wait "$server_pid"; server_pid=""
echo "obs smoke OK: all metric families present, stats.json live"
