package fastjoin

import (
	"fmt"
	"os"
	"time"

	"fastjoin/internal/stream"
	"fastjoin/internal/workload"
)

// This file exposes the evaluation workload generators through the public
// API so applications and examples can reproduce the paper's inputs without
// reaching into internal packages.

// Workload bundles the sources of a two-stream workload, ready to drop into
// Options.Sources.
type Workload struct {
	// Sources ingests both streams (already interleaved at the workload's
	// natural rate ratio).
	Sources []TupleSource
	// Description summarizes the workload for logs and reports.
	Description string
}

// RideHailingOptions parameterizes the synthetic DiDi-style workload that
// stands in for the paper's proprietary GAIA dataset.
type RideHailingOptions struct {
	// Cells is the number of grid locations (keys); default 10000.
	Cells int
	// Tuples bounds the total tuples generated (0 = unbounded).
	Tuples int
	// Rate paces emission in tuples/second (0 = unlimited).
	Rate float64
	// TracksPerOrder is the S:R rate ratio; default 4.
	TracksPerOrder int
	// Parallel is the number of ingestion tasks (default 1). Parallel
	// sources share the hot cells but sample independently, and emit
	// disjoint sequence-number spaces.
	Parallel int
	// Seed derandomizes generation.
	Seed int64
}

// NewRideHailingWorkload builds the passenger-order / taxi-track workload
// calibrated to the skew the paper reports (Fig. 1a/1b).
func NewRideHailingWorkload(opts RideHailingOptions) Workload {
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	sources := make([]TupleSource, parallel)
	for i := 0; i < parallel; i++ {
		cfg := workload.DefaultRideHailingConfig()
		if opts.Cells > 0 {
			side := isqrt(opts.Cells)
			cfg.GridWidth, cfg.GridHeight = side, (opts.Cells+side-1)/side
		}
		if opts.TracksPerOrder > 0 {
			cfg.TracksPerOrder = opts.TracksPerOrder
		}
		if opts.Seed != 0 {
			cfg.Seed = opts.Seed
		}
		cfg.Variant = i
		rh := workload.NewRideHailing(cfg)
		rh.R.WithSeqStride(uint64(i), uint64(parallel))
		rh.S.WithSeqStride(uint64(i), uint64(parallel))
		sources[i] = boundedPairSource(rh.Pair, shareOf(opts.Tuples, parallel, i), opts.Rate/float64(parallel))
	}
	return Workload{
		Sources:     sources,
		Description: "ride-hailing (DiDi-style): orders ⋈ taxi tracks on grid cell",
	}
}

// shareOf splits a budget across p workers; worker i gets the remainder's
// extra tuple when the budget does not divide evenly. A zero budget stays
// unbounded for every worker.
func shareOf(total, p, i int) int {
	if total <= 0 {
		return 0
	}
	share := total / p
	if i < total%p {
		share++
	}
	if share == 0 {
		share = 1
	}
	return share
}

// AdClicksOptions parameterizes the Photon-style query/click workload.
type AdClicksOptions struct {
	// Ads is the number of distinct ad ids; default 20000.
	Ads int
	// Tuples bounds the total tuples generated (0 = unbounded).
	Tuples int
	// Rate paces emission in tuples/second (0 = unlimited).
	Rate float64
	// Seed derandomizes generation.
	Seed int64
}

// NewAdClicksWorkload builds the Photon-style ad-analytics workload: a
// dense search-query stream joined with a sparse click stream on ad id.
func NewAdClicksWorkload(opts AdClicksOptions) Workload {
	cfg := workload.DefaultAdClicksConfig()
	if opts.Ads > 0 {
		cfg.Ads = opts.Ads
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	ac := workload.NewAdClicks(cfg)
	// Queries are the dense stream here: interleave QueriesPerClick
	// queries per click.
	pair := workload.Pair{R: ac.Queries, S: ac.Clicks, SPerR: 1}
	i, per := 0, cfg.QueriesPerClick
	next := func() stream.Tuple {
		i++
		if i%(per+1) == 0 {
			return pair.S.Next()
		}
		return pair.R.Next()
	}
	return Workload{
		Sources:     []TupleSource{boundedFuncSource(next, opts.Tuples, opts.Rate)},
		Description: "ad analytics (Photon-style): queries ⋈ clicks on ad id",
	}
}

// ZipfOptions parameterizes the synthetic skew-group workloads of
// Figs. 12/13 ("Gxy": stream R zipf exponent x, stream S exponent y).
type ZipfOptions struct {
	// Keys is the key-universe size per stream; default 10000
	// (the paper uses 10 million keys and 300 million tuples).
	Keys int
	// ThetaR and ThetaS are the zipf exponents (0 = uniform).
	ThetaR, ThetaS float64
	// Tuples bounds the total tuples generated (0 = unbounded).
	Tuples int
	// Rate paces emission in tuples/second (0 = unlimited).
	Rate float64
	// Parallel is the number of ingestion tasks (default 1).
	Parallel int
	// Seed derandomizes generation.
	Seed int64
}

// NewZipfWorkload builds one of the paper's synthetic skew groups.
func NewZipfWorkload(opts ZipfOptions) Workload {
	keys := opts.Keys
	if keys <= 0 {
		keys = 10000
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	parallel := opts.Parallel
	if parallel <= 0 {
		parallel = 1
	}
	permSeed := seed ^ 0x1f83d9ab
	sources := make([]TupleSource, parallel)
	for i := 0; i < parallel; i++ {
		sampleSeed := seed + int64(i)*7919
		r := workload.NewSource(stream.R, workload.NewZipfPerm(keys, opts.ThetaR, sampleSeed+1, permSeed), nil).
			WithSeqStride(uint64(i), uint64(parallel))
		s := workload.NewSource(stream.S, workload.NewZipfPerm(keys, opts.ThetaS, sampleSeed+2, permSeed), nil).
			WithSeqStride(uint64(i), uint64(parallel))
		pair := workload.Pair{R: r, S: s, SPerR: 1}
		sources[i] = boundedPairSource(pair, shareOf(opts.Tuples, parallel, i), opts.Rate/float64(parallel))
	}
	return Workload{
		Sources:     sources,
		Description: "synthetic zipf streams",
	}
}

// NewTraceWorkload replays a CSV trace file (as written by
// workload.WriteTrace or `fastjoin-gen -trace`): one ingestion task
// streaming the file's tuples in order. The file closes when the source is
// exhausted or hits a malformed row.
func NewTraceWorkload(path string) (Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return Workload{}, fmt.Errorf("fastjoin: open trace: %w", err)
	}
	tr, err := workload.NewTraceReader(f)
	if err != nil {
		f.Close()
		return Workload{}, err
	}
	inner := workload.TraceSource(tr, nil)
	done := false
	src := func() (stream.Tuple, bool) {
		if done {
			return stream.Tuple{}, false
		}
		t, ok := inner()
		if !ok {
			done = true
			f.Close()
			return stream.Tuple{}, false
		}
		return t, true
	}
	return Workload{
		Sources:     []TupleSource{src},
		Description: "trace replay: " + path,
	}, nil
}

// boundedPairSource adapts an interleaved Pair to a TupleSource with an
// optional tuple budget and rate limit.
func boundedPairSource(p workload.Pair, limit int, rate float64) TupleSource {
	if p.SPerR < 1 {
		p.SPerR = 1
	}
	i := 0
	next := func() stream.Tuple {
		var t stream.Tuple
		if i%(p.SPerR+1) == 0 {
			t = p.R.Next()
		} else {
			t = p.S.Next()
		}
		i++
		return t
	}
	return boundedFuncSource(next, limit, rate)
}

// boundedFuncSource wraps a generator with a tuple budget and rate limit.
func boundedFuncSource(next func() stream.Tuple, limit int, rate float64) TupleSource {
	produced := 0
	var pace func()
	if rate > 0 {
		interval := time.Duration(float64(time.Second) / rate)
		nextAt := time.Now()
		pace = func() {
			nextAt = nextAt.Add(interval)
			if d := time.Until(nextAt); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return func() (stream.Tuple, bool) {
		if limit > 0 && produced >= limit {
			return stream.Tuple{}, false
		}
		if pace != nil {
			pace()
		}
		produced++
		return next(), true
	}
}

// isqrt returns the integer square root of n (floor), n >= 0.
func isqrt(n int) int {
	if n <= 0 {
		return 1
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	if x < 1 {
		return 1
	}
	return x
}

// DriftOptions parameterizes a workload whose hot keys move over time —
// the dynamic-workload scenario the paper's introduction motivates, where
// no static assignment stays balanced.
type DriftOptions struct {
	// Keys is the key universe size; default 10000.
	Keys int
	// Theta is the zipf exponent of both streams; default 1.0.
	Theta float64
	// ShiftEvery is how many tuples (per stream) pass between hot-set
	// shifts; default 100000.
	ShiftEvery int64
	// Step is how far the hot set moves per shift; default Keys/7+1.
	Step int
	// Tuples bounds the total tuples generated (0 = unbounded).
	Tuples int
	// Rate paces emission in tuples/second (0 = unlimited).
	Rate float64
	// Seed derandomizes generation.
	Seed int64
}

// NewDriftingWorkload builds a two-stream workload with a moving hot set;
// both streams shift in lockstep so each epoch's hot keys are shared.
func NewDriftingWorkload(opts DriftOptions) Workload {
	keys := opts.Keys
	if keys <= 0 {
		keys = 10000
	}
	theta := opts.Theta
	if theta <= 0 {
		theta = 1.0
	}
	period := opts.ShiftEvery
	if period <= 0 {
		period = 100000
	}
	step := opts.Step
	if step <= 0 {
		step = keys/7 + 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	permSeed := seed ^ 0x2b7e1516
	r := workload.NewSource(stream.R,
		workload.NewDriftingZipf(keys, theta, period, step, seed+1, permSeed), nil)
	s := workload.NewSource(stream.S,
		workload.NewDriftingZipf(keys, theta, period, step, seed+2, permSeed), nil)
	pair := workload.Pair{R: r, S: s, SPerR: 1}
	return Workload{
		Sources:     []TupleSource{boundedPairSource(pair, opts.Tuples, opts.Rate)},
		Description: "drifting-hotspot zipf streams",
	}
}
